//! `lln-energy` — radio and CPU duty-cycle accounting.
//!
//! The paper's application study (§9) reports power consumption as two
//! duty cycles, measured by instrumenting the radio driver and the OS
//! scheduler: the **radio duty cycle** is the fraction of time the
//! radio is not in its low-power sleep state, and the **CPU duty
//! cycle** is the fraction of time a thread is executing. This crate
//! reproduces exactly that accounting for simulated nodes, plus a
//! conversion to average current using AT86RF233/SAMR21 datasheet
//! numbers for readers who want milliamps.

use lln_sim::{Duration, Instant};

/// Radio power states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RadioState {
    /// Deep sleep (register retention only).
    Sleep,
    /// Receiver on (listening or receiving).
    Rx,
    /// Transmitting.
    Tx,
}

/// Datasheet current draws (mA) for power estimates.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Radio sleep current.
    pub radio_sleep_ma: f64,
    /// Radio receive/listen current (AT86RF233: ~11.8 mA).
    pub radio_rx_ma: f64,
    /// Radio transmit current at the experiment's power (~13.8 mA).
    pub radio_tx_ma: f64,
    /// MCU active current (SAMR21 at 48 MHz: ~6.5 mA).
    pub cpu_active_ma: f64,
    /// MCU idle/sleep current.
    pub cpu_idle_ma: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            radio_sleep_ma: 0.0002,
            radio_rx_ma: 11.8,
            radio_tx_ma: 13.8,
            cpu_active_ma: 6.5,
            cpu_idle_ma: 0.003,
        }
    }
}

/// Per-node energy meter.
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    state: RadioState,
    state_since: Instant,
    sleep_time: Duration,
    rx_time: Duration,
    tx_time: Duration,
    cpu_busy: Duration,
    started: Instant,
}

impl EnergyMeter {
    /// Creates a meter; the radio starts asleep at `now`.
    pub fn new(now: Instant) -> Self {
        EnergyMeter {
            state: RadioState::Sleep,
            state_since: now,
            sleep_time: Duration::ZERO,
            rx_time: Duration::ZERO,
            tx_time: Duration::ZERO,
            cpu_busy: Duration::ZERO,
            started: now,
        }
    }

    /// Current radio state.
    pub fn state(&self) -> RadioState {
        self.state
    }

    fn settle(&mut self, now: Instant) {
        let span = now.saturating_duration_since(self.state_since);
        match self.state {
            RadioState::Sleep => self.sleep_time += span,
            RadioState::Rx => self.rx_time += span,
            RadioState::Tx => self.tx_time += span,
        }
        self.state_since = now;
    }

    /// Transitions the radio to `state` at `now`.
    pub fn set_radio_state(&mut self, state: RadioState, now: Instant) {
        self.settle(now);
        self.state = state;
    }

    /// Charges `span` of CPU time (per-event processing cost).
    pub fn add_cpu(&mut self, span: Duration) {
        self.cpu_busy += span;
    }

    /// Total time observed so far, as of `now`.
    pub fn elapsed(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.started)
    }

    /// Radio duty cycle over `[started, now]`: fraction of time the
    /// radio was not asleep — the paper's Figures 8-10 metric.
    pub fn radio_duty_cycle(&mut self, now: Instant) -> f64 {
        self.settle(now);
        let total = self.elapsed(now).as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        (self.rx_time + self.tx_time).as_micros() as f64 / total
    }

    /// CPU duty cycle over `[started, now]`.
    pub fn cpu_duty_cycle(&self, now: Instant) -> f64 {
        let total = self.elapsed(now).as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        (self.cpu_busy.as_micros() as f64 / total).min(1.0)
    }

    /// Time spent in each radio state (sleep, rx, tx).
    pub fn radio_times(&mut self, now: Instant) -> (Duration, Duration, Duration) {
        self.settle(now);
        (self.sleep_time, self.rx_time, self.tx_time)
    }

    /// Average current draw in mA under `model`.
    pub fn average_current_ma(&mut self, now: Instant, model: &PowerModel) -> f64 {
        self.settle(now);
        let total = self.elapsed(now).as_micros() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let radio = self.sleep_time.as_micros() as f64 * model.radio_sleep_ma
            + self.rx_time.as_micros() as f64 * model.radio_rx_ma
            + self.tx_time.as_micros() as f64 * model.radio_tx_ma;
        let cpu_busy = self.cpu_busy.as_micros() as f64;
        let cpu = cpu_busy * model.cpu_active_ma + (total - cpu_busy) * model.cpu_idle_ma;
        (radio + cpu) / total
    }

    /// Resets the accounting window to start at `now` (for windowed
    /// reports like Figure 10's hourly duty cycles).
    pub fn reset_window(&mut self, now: Instant) {
        self.settle(now);
        self.sleep_time = Duration::ZERO;
        self.rx_time = Duration::ZERO;
        self.tx_time = Duration::ZERO;
        self.cpu_busy = Duration::ZERO;
        self.started = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_radio_is_100_percent() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.set_radio_state(RadioState::Rx, Instant::ZERO);
        let dc = m.radio_duty_cycle(Instant::from_secs(10));
        assert!((dc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sleeping_radio_is_zero() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        assert_eq!(m.radio_duty_cycle(Instant::from_secs(10)), 0.0);
    }

    #[test]
    fn mixed_states_accounted_proportionally() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.set_radio_state(RadioState::Rx, Instant::from_secs(0));
        m.set_radio_state(RadioState::Tx, Instant::from_secs(1));
        m.set_radio_state(RadioState::Sleep, Instant::from_secs(2));
        let (sleep, rx, tx) = m.radio_times(Instant::from_secs(10));
        assert_eq!(rx, Duration::from_secs(1));
        assert_eq!(tx, Duration::from_secs(1));
        assert_eq!(sleep, Duration::from_secs(8));
        let dc = m.radio_duty_cycle(Instant::from_secs(10));
        assert!((dc - 0.2).abs() < 1e-9);
    }

    #[test]
    fn cpu_duty_cycle_from_charges() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.add_cpu(Duration::from_millis(100));
        let dc = m.cpu_duty_cycle(Instant::from_secs(10));
        assert!((dc - 0.01).abs() < 1e-9);
    }

    #[test]
    fn average_current_between_sleep_and_rx() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.set_radio_state(RadioState::Rx, Instant::ZERO);
        m.set_radio_state(RadioState::Sleep, Instant::from_secs(5));
        let model = PowerModel::default();
        let ma = m.average_current_ma(Instant::from_secs(10), &model);
        assert!(ma > 0.5 * model.radio_rx_ma * 0.9 && ma < model.radio_rx_ma);
    }

    #[test]
    fn window_reset_restarts_accounting() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.set_radio_state(RadioState::Rx, Instant::ZERO);
        m.reset_window(Instant::from_secs(5));
        m.set_radio_state(RadioState::Sleep, Instant::from_secs(6));
        // Window [5,10]: 1s rx, 4s sleep -> 20%.
        let dc = m.radio_duty_cycle(Instant::from_secs(10));
        assert!((dc - 0.2).abs() < 1e-9, "dc {dc}");
    }

    #[test]
    fn duty_cycle_idempotent_queries() {
        let mut m = EnergyMeter::new(Instant::ZERO);
        m.set_radio_state(RadioState::Rx, Instant::ZERO);
        let a = m.radio_duty_cycle(Instant::from_secs(4));
        let b = m.radio_duty_cycle(Instant::from_secs(4));
        assert_eq!(a, b);
    }
}
