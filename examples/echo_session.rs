//! Interactive duplex session over the mesh — the paper's §10
//! "versatility" argument: TCP's bytestream supports request/response
//! interactions (think: a debugging shell into a mote) that
//! sensor-data protocols like CoAP were never designed for.
//!
//! A "shell client" on the cloud host sends commands to a mote three
//! wireless hops deep; the mote answers over the same connection. We
//! measure per-command round-trip latency through the full stack.
//!
//! Run with: `cargo run --example echo_session --release`

use tcplp_repro::netip::NodeId;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::phy::{LinkMatrix, RadioIdx};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

fn main() {
    // cloud(0) — border(1) — r2 — r3 (the "shell server" mote).
    let mut links = LinkMatrix::new(4);
    links.set_symmetric(RadioIdx(1), RadioIdx(2), 0.99);
    links.set_symmetric(RadioIdx(2), RadioIdx(3), 0.99);
    let topo = Topology::with_shortest_paths(links);
    let mut world = World::new(
        &topo,
        &[
            NodeKind::CloudHost,
            NodeKind::BorderRouter,
            NodeKind::Router,
            NodeKind::Router,
        ],
        WorldConfig::default(),
    );
    // The mote listens; the cloud connects (inbound connection into the
    // LLN — no application-layer gateway, the paper's interoperability
    // point).
    world.add_tcp_listener(3, TcpConfig::default());
    world.add_tcp_client(0, 3, TcpConfig::default(), Instant::from_millis(10));
    world.run_for(Duration::from_secs(3));
    assert_eq!(
        world.nodes[0].transport.tcp[0].state(),
        tcplp_repro::tcplp::TcpState::Established,
        "cloud shell connected into the mesh"
    );

    let commands: &[&str] = &[
        "uptime",
        "read anemometer 0",
        "set txpower -8",
        "dump neighbor table",
        "reboot --dry-run",
    ];
    println!("interactive session: cloud -> 3-hop mote (echo server)\n");
    for cmd in commands {
        let sent_at = world.now();
        world.nodes[0].transport.tcp[0].send(cmd.as_bytes());
        world.pump_transport(0, world.now());

        // Drive the world until the echo comes back (mote echoes each
        // command reversed, like a tiny shell).
        let mut reply = Vec::new();
        for _ in 0..400 {
            world.run_for(Duration::from_millis(10));
            // Mote side: echo whatever arrived.
            let mut buf = [0u8; 256];
            let now = world.now();
            let n = {
                let server = world.nodes[3].transport.tcp.first_mut().expect("accepted");
                server.recv(&mut buf)
            };
            if n > 0 {
                let echoed: Vec<u8> = buf[..n].iter().rev().copied().collect();
                let server = world.nodes[3].transport.tcp.first_mut().unwrap();
                server.send(&echoed);
                world.pump_transport(3, now);
            }
            // Cloud side: collect the reply.
            let n = world.nodes[0].transport.tcp[0].recv(&mut buf);
            if n > 0 {
                reply.extend_from_slice(&buf[..n]);
            }
            if reply.len() >= cmd.len() {
                break;
            }
        }
        let rtt = world.now() - sent_at;
        let reply_str = String::from_utf8_lossy(&reply);
        println!(
            "  $ {cmd:<22} -> {reply_str:<22} ({:.0} ms round trip)",
            rtt.as_secs_f64() * 1000.0
        );
        let expect: String = cmd.chars().rev().collect();
        assert_eq!(reply_str, expect, "echo must be intact");
    }

    println!("\nFive request/response exchanges over one TCP connection,");
    println!("initiated from the wired side, across three 802.15.4 hops —");
    println!("no gateway, no per-message protocol machinery. (Addresses:");
    println!(
        "cloud {} -> mote {}.)",
        NodeId(0).cloud_addr(),
        NodeId(3).mesh_addr()
    );
}
