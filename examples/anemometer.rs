//! The paper's motivating application (§3): battery-powered ultrasonic
//! anemometers streaming 82-byte readings at 1 Hz through a Thread-like
//! mesh to a cloud server — over TCPlp and over CoAP, side by side.
//!
//! Run with: `cargo run --example anemometer --release`

use tcplp_repro::coap::{CoapClient, CoapClientConfig, RtoAlgorithm};
use tcplp_repro::node::app::App;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::phy::{LinkMatrix, RadioIdx};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

/// cloud(0) — border(1) — router(2) — router(3), two sleepy sensors on
/// node 3 (4 wireless hops + the wired segment to the cloud).
fn build_world(seed: u64) -> World {
    let mut links = LinkMatrix::new(6);
    let prr = 0.97;
    links.set_symmetric(RadioIdx(1), RadioIdx(2), prr);
    links.set_symmetric(RadioIdx(2), RadioIdx(3), prr);
    links.set_symmetric(RadioIdx(3), RadioIdx(4), prr);
    links.set_symmetric(RadioIdx(3), RadioIdx(5), prr);
    let topo = Topology::with_shortest_paths(links);
    let cfg = WorldConfig {
        seed,
        ..WorldConfig::default()
    };
    World::new(
        &topo,
        &[
            NodeKind::CloudHost,
            NodeKind::BorderRouter,
            NodeKind::Router,
            NodeKind::Router,
            NodeKind::SleepyLeaf,
            NodeKind::SleepyLeaf,
        ],
        cfg,
    )
}

fn report(world: &mut World, label: &str, delivered_readings: u64) {
    let now = world.now();
    let mut generated = 0;
    let mut dc = 0.0;
    for leaf in [4usize, 5] {
        if let App::Anemometer(a) = &world.nodes[leaf].app {
            generated += a.generated;
        }
        dc += world.nodes[leaf].meter.radio_duty_cycle(now) / 2.0;
    }
    println!(
        "{label:<8} generated {generated:>5} readings, delivered {delivered_readings:>5} \
         ({:.1}%), mean radio duty cycle {:.2}%",
        100.0 * delivered_readings as f64 / generated.max(1) as f64,
        dc * 100.0
    );
}

fn main() {
    let minutes = 20;
    println!("anemometry: 2 sensors x 1 Hz x {minutes} min, batch = 64 readings\n");

    // --- TCPlp arm ---
    let mut world = build_world(1);
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink(0);
    for (k, leaf) in [4usize, 5].into_iter().enumerate() {
        world.add_tcp_client(leaf, 0, TcpConfig::default(), Instant::from_millis(300 + k as u64 * 170));
        world.set_anemometer(leaf, 64, Some(64), Instant::from_secs(1));
    }
    world.run_for(Duration::from_secs(minutes * 60));
    let tcp_readings = world.nodes[0].app.sink_received() / 82;
    report(&mut world, "TCPlp", tcp_readings);

    // --- CoAP arm ---
    let mut world = build_world(2);
    world.add_coap_server(0);
    for leaf in [4usize, 5] {
        world.add_coap_client(
            leaf,
            CoapClient::new(
                CoapClientConfig::default(),
                RtoAlgorithm::Default,
                &["sensors", "anemometer"],
            ),
        );
        world.set_anemometer(leaf, 104, Some(64), Instant::from_secs(1));
    }
    world.run_for(Duration::from_secs(minutes * 60));
    let coap_readings: usize = world.nodes[0]
        .transport
        .coap_server
        .as_ref()
        .map(|s| s.received().iter().map(|r| r.payload.len() / 82).sum())
        .unwrap_or(0);
    report(&mut world, "CoAP", coap_readings as u64);

    println!("\nBoth reliability protocols deliver ~100% of readings at a");
    println!("few-percent radio duty cycle — the paper's §9 conclusion that");
    println!("full-scale TCP is power-competitive with LLN-specific CoAP.");
}
