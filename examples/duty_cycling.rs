//! TCP over a duty-cycled link (Appendix C): a sleepy end device with
//! the adaptive Trickle-based sleep interval carries bulk TCP at high
//! throughput, yet idles at a tiny duty cycle.
//!
//! Run with: `cargo run --example duty_cycling --release`

use tcplp_repro::mac::poll::PollMode;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

fn build() -> World {
    let topo = Topology::pair(0.999);
    let mut world = World::new(
        &topo,
        &[NodeKind::Router, NodeKind::SleepyLeaf],
        WorldConfig::default(),
    );
    // Appendix C parameters: smin = 20 ms, smax = 5 s, double on idle.
    world.set_poll_mode(1, PollMode::paper_adaptive());
    world.schedule_poll(1, Instant::from_millis(5));
    world
}

fn main() {
    // Phase 1: idle leaf for 10 minutes — measure the idle duty cycle.
    let mut world = build();
    world.run_for(Duration::from_secs(600));
    let now = world.now();
    let idle_dc = world.nodes[1].meter.radio_duty_cycle(now);
    println!("idle duty cycle (10 min, adaptive polls): {:.3}%", idle_dc * 100.0);

    // Phase 2: a TCP burst through the duty-cycled link.
    let mut world = build();
    let tcp = TcpConfig::with_window_segments(462, 6); // §C.2's 6-segment buffers
    world.add_tcp_listener(0, tcp.clone());
    world.set_sink(0);
    world.add_tcp_client(1, 0, tcp, Instant::from_secs(60));
    world.set_bulk_sender(1, Some(300_000));
    world.run_for(Duration::from_secs(180));
    let goodput = world.nodes[0].app.sink_goodput_bps();
    let now = world.now();
    let dc = world.nodes[1].meter.radio_duty_cycle(now);
    println!(
        "bulk uplink through the sleepy link:      {:.1} kb/s (paper §C.2: 68.6 kb/s)",
        goodput / 1000.0
    );
    println!("duty cycle across idle+burst phases:      {:.2}%", dc * 100.0);
    println!();
    println!("The Trickle rule (reset to 20 ms on traffic, double to 5 s when");
    println!("idle) gives always-on-like TCP throughput during bursts and a");
    println!("~0.1% radio duty cycle when quiescent — no static compromise.");
}
