//! Fault injection + connection supervision: a supervised bulk
//! transfer over a 3-hop chain survives a relay reboot and a 30-second
//! link blackout with zero bytes lost — the supervisor detects the
//! dead path, backs off, reconnects, and replays unacknowledged
//! records.
//!
//! Run with: `cargo run --example chaos --release`

use tcplp_repro::node::fault::FaultPlan;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::supervisor::{RecordAssembler, SupervisorConfig};
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

const BULK_BYTES: u64 = 120_000;

fn main() {
    // node3 -> node2 -> node1 -> node0 (border router + capture sink).
    let topo = Topology::chain(4, 0.999);
    let mut world = World::new(
        &topo,
        &[
            NodeKind::BorderRouter,
            NodeKind::Router,
            NodeKind::Router,
            NodeKind::Router,
        ],
        WorldConfig::default(),
    );
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink_capture(0);

    // Supervised sender: fast dead-path detection (3 retransmits, RTO
    // capped at 4 s) so a 30 s blackout is declared dead, not ridden out.
    let mut sup = SupervisorConfig::default();
    sup.tcp.max_retransmits = 3;
    sup.tcp.max_rto = Duration::from_secs(4);
    world.add_supervised_client(3, 0, sup, Instant::from_millis(10));
    world.set_bulk_sender(3, Some(BULK_BYTES));

    // The fault plan: the middle relay reboots at t=8s (down 5 s), then
    // the 1-2 link goes completely dark for 30 s starting at t=15s.
    let plan = FaultPlan::new()
        .reboot(2, Instant::from_secs(8), Duration::from_secs(5))
        .blackout(1, 2, Instant::from_secs(15), Duration::from_secs(30));
    world.apply_fault_plan(&plan);

    println!("3-hop supervised bulk transfer, {BULK_BYTES} B:");
    println!("  t= 8s  relay node2 reboots (down 5 s, all state lost)");
    println!("  t=15s  link 1-2 blacked out for 30 s\n");
    world.run_for(Duration::from_secs(240));

    // Reassemble everything the sink captured, across every connection
    // incarnation, deduplicating replayed records by sequence number.
    let mut asm = RecordAssembler::new();
    for (_, bytes) in world.nodes[0].app.sink_capture() {
        asm.ingest_connection(bytes);
    }
    let assembled = asm.assembled().expect("contiguous stream");
    let intact = assembled.len() as u64 == BULK_BYTES
        && assembled.iter().enumerate().all(|(m, &b)| b == (m % 256) as u8);

    let stats = world.supervisor_stats(3).expect("supervised client");
    println!("supervisor: {} death(s), {} reconnect(s) after {} attempt(s)",
        stats.deaths, stats.reconnects, stats.connect_attempts);
    println!(
        "            {} record(s) replayed ({} B), {:.1} s of downtime",
        stats.records_replayed,
        stats.bytes_replayed,
        stats.downtime_us as f64 / 1e6
    );
    println!(
        "delivery:   {} / {BULK_BYTES} B reassembled, {} duplicate record(s) \
         discarded, byte-exact: {}",
        assembled.len(),
        asm.duplicates(),
        if intact { "yes" } else { "NO" }
    );

    println!("\nThe TCP connection died mid-transfer (retransmit exhaustion");
    println!("during the blackout), yet the application stream is byte-exact:");
    println!("the supervisor retains records until they are cumulatively ACKed");
    println!("and replays the rest on the next connection, while the receiver");
    println!("deduplicates by record sequence number.");
}
