//! Quickstart: two simulated motes, one TCPlp connection, one bulk
//! transfer — the minimal end-to-end use of the library.
//!
//! Run with: `cargo run --example quickstart`

use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

fn main() {
    // 1. A two-node topology: motes 5.5 m apart on a clean channel
    //    (the paper's §6 preliminary-study setup).
    let topology = Topology::pair(0.999);

    // 2. A world with default PHY/MAC parameters (250 kb/s 802.15.4,
    //    software CSMA, link retries with d = 40 ms).
    let mut world = World::new(
        &topology,
        &[NodeKind::Router, NodeKind::Router],
        WorldConfig::default(),
    );

    // 3. Node 0 listens; node 1 connects and streams 100 kB.
    let tcp = TcpConfig::default(); // MSS 462 B, window 4 segments
    world.add_tcp_listener(0, tcp.clone());
    world.set_sink(0);
    world.add_tcp_client(1, 0, tcp, Instant::from_millis(10));
    world.set_bulk_sender(1, Some(100_000));

    // 4. Run one simulated minute.
    world.run_for(Duration::from_secs(60));

    // 5. Report.
    let received = world.nodes[0].app.sink_received();
    let goodput = world.nodes[0].app.sink_goodput_bps();
    let sender = &world.nodes[1].transport.tcp[0];
    println!("received:        {received} bytes");
    println!("goodput:         {:.1} kb/s", goodput / 1000.0);
    println!("segments sent:   {}", sender.stats.segs_sent);
    println!("retransmissions: {}", sender.stats.segs_retransmitted);
    println!("srtt:            {:?}", sender.srtt());
    println!(
        "frames on air:   {}",
        world.medium.counters.get("frames_tx")
    );
    assert_eq!(received, 100_000, "transfer must complete");
    println!("\nA single 802.15.4 hop carries full-scale TCP at ~70 kb/s —");
    println!("the paper's headline result (§6.3).");
}
