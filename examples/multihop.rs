//! Multihop TCP with hidden terminals: sweeps the link-retry delay `d`
//! over a 3-hop chain, showing the paper's §7.1 mechanism in action —
//! a random delay between link-layer retransmissions defuses
//! hidden-terminal collisions.
//!
//! Run with: `cargo run --example multihop --release`

use tcplp_repro::mac::MacConfig;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

fn run(d: Duration) -> (f64, f64, u64) {
    let hops = 3;
    let topo = Topology::chain(hops + 1, 0.999);
    let cfg = WorldConfig {
        mac: MacConfig {
            retry_delay_max: d,
            ..MacConfig::default()
        },
        ..WorldConfig::default()
    };
    let mut world = World::new(&topo, &vec![NodeKind::Router; hops + 1], cfg);
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink(0);
    world.add_tcp_client(hops, 0, TcpConfig::default(), Instant::from_millis(10));
    world.set_bulk_sender(hops, Some(600_000));
    world.run_for(Duration::from_secs(90));
    let sender = &world.nodes[hops].transport.tcp[0];
    let loss = sender.stats.segs_retransmitted as f64
        / (sender.stats.segs_sent - sender.stats.acks_sent).max(1) as f64;
    (
        world.nodes[0].app.sink_goodput_bps(),
        loss,
        world.medium.counters.get("collisions"),
    )
}

fn main() {
    println!("3-hop chain: node3 -> node2 -> node1 -> node0 (hidden terminals");
    println!("everywhere: only adjacent nodes hear each other)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "d (ms)", "goodput", "segment loss", "collisions"
    );
    println!("{:-<50}", "");
    for d_ms in [0u64, 10, 20, 40, 80] {
        let (goodput, loss, collisions) = run(Duration::from_millis(d_ms));
        println!(
            "{:<10} {:>9.1} k {:>13.1}% {:>12}",
            d_ms,
            goodput / 1000.0,
            loss * 100.0,
            collisions
        );
    }
    println!("\nAt d = 0 retransmissions of collided frames collide again;");
    println!("a moderate random delay (the paper recommends ~40 ms) spreads");
    println!("them out, cutting TCP segment loss by an order of magnitude.");
}
