//! Property-based tests (proptest) over the core data structures and
//! codecs: stream invariants of the in-place reassembly receive buffer
//! and circular send buffer, wraparound-safe sequence arithmetic, SACK
//! scoreboard consistency, and roundtrip laws for every wire codec.

use proptest::prelude::*;
use tcplp_repro::netip::{Ipv6Addr, Ipv6Header, NextHeader, NodeId, UdpHeader};
use tcplp_repro::sim::Instant;
use tcplp_repro::sixlowpan as lowpan;
use tcplp_repro::tcplp::{
    Flags, RecvBuffer, SackBlock, SackScoreboard, Segment, SendBuffer, TcpSeq, Timestamps,
};

// ---------------------------------------------------------------------
// Receive buffer: arbitrary segment arrival order must deliver the
// stream intact, never deliver out-of-range data, and keep internal
// invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recvbuf_reassembles_any_arrival_order(
        cap in 64usize..512,
        seg_len in 1usize..96,
        order in proptest::collection::vec(0usize..32, 1..32),
    ) {
        // The stream is cap bytes of a known pattern, cut into
        // segments of seg_len; `order` picks (with repeats) which
        // segment arrives next. Delivered bytes must match the stream
        // prefix at all times.
        let stream: Vec<u8> = (0..cap).map(|i| (i * 131 % 251) as u8).collect();
        let mut rb = RecvBuffer::new(cap);
        let mut delivered = Vec::new();
        let nsegs = cap.div_ceil(seg_len);
        for &pick in &order {
            let k = pick % nsegs;
            let start = k * seg_len;
            let end = (start + seg_len).min(cap);
            // Offset relative to rcv_nxt = start - delivered-so-far...
            let consumed = delivered.len() + rb.available();
            if start < consumed {
                continue; // already in sequence; socket would trim
            }
            let offset = start - consumed;
            rb.write(offset, &stream[start..end]);
            rb.check_invariants();
            let mut buf = vec![0u8; rb.available()];
            let n = rb.read(&mut buf);
            delivered.extend_from_slice(&buf[..n]);
        }
        prop_assert!(delivered.len() <= cap);
        prop_assert_eq!(&delivered[..], &stream[..delivered.len()]);
    }

    #[test]
    fn recvbuf_window_conservation(
        cap in 16usize..256,
        writes in proptest::collection::vec((0usize..64, 1usize..64), 0..16),
    ) {
        let mut rb = RecvBuffer::new(cap);
        for (off, len) in writes {
            let data = vec![0xa5u8; len];
            rb.write(off, &data);
            rb.check_invariants();
            // Window + available never exceeds capacity.
            prop_assert!(rb.available() + rb.window() == cap);
        }
    }

    // -----------------------------------------------------------------
    // Send buffer: push/advance/view behave like a byte queue.
    // -----------------------------------------------------------------

    #[test]
    fn sendbuf_behaves_like_byte_queue(
        cap in 8usize..256,
        ops in proptest::collection::vec((any::<bool>(), 1usize..64), 1..64),
    ) {
        let mut sb = SendBuffer::new(cap);
        let mut model: Vec<u8> = Vec::new();
        let mut counter = 0u8;
        for (is_push, n) in ops {
            if is_push {
                let chunk: Vec<u8> = (0..n).map(|_| {
                    counter = counter.wrapping_add(1);
                    counter
                }).collect();
                let accepted = sb.push(&chunk);
                prop_assert_eq!(accepted, n.min(cap - model.len()));
                model.extend_from_slice(&chunk[..accepted]);
            } else {
                let k = n.min(model.len());
                sb.advance(k);
                model.drain(..k);
            }
            prop_assert_eq!(sb.len(), model.len());
            prop_assert_eq!(sb.copy_out(0, model.len()), model.clone());
            // Zero-copy view agrees with copy_out at arbitrary offsets.
            if !model.is_empty() {
                let off = model.len() / 2;
                let (a, b) = sb.view(off, model.len());
                let mut v = a.to_vec();
                v.extend_from_slice(b);
                prop_assert_eq!(&v[..], &model[off..]);
            }
        }
    }

    // -----------------------------------------------------------------
    // Sequence arithmetic is a total order on windows < 2^31.
    // -----------------------------------------------------------------

    #[test]
    fn seq_ordering_antisymmetric(a in any::<u32>(), delta in 1u32..0x7fff_ffff) {
        let x = TcpSeq(a);
        let y = x + delta;
        prop_assert!(x.lt(y));
        prop_assert!(!y.lt(x));
        prop_assert!(y.gt(x));
        prop_assert_eq!(y.distance_from(x), delta);
    }

    #[test]
    fn seq_window_membership_consistent(base in any::<u32>(), len in 1u32..1_000_000, k in 0u32..1_000_000) {
        let lo = TcpSeq(base);
        let s = lo + k;
        prop_assert_eq!(s.in_window(lo, len), k < len);
    }

    // -----------------------------------------------------------------
    // SACK scoreboard: sacked bytes never exceed the window, holes and
    // sacked ranges are disjoint.
    // -----------------------------------------------------------------

    #[test]
    fn sack_scoreboard_consistency(
        base in any::<u32>(),
        blocks in proptest::collection::vec((0u32..20_000, 1u32..2_000), 0..12),
    ) {
        let una = TcpSeq(base);
        let smax = una + 20_000;
        let mut sb = SackScoreboard::new();
        let wire: Vec<SackBlock> = blocks
            .iter()
            .map(|&(off, len)| SackBlock { start: una + off, end: una + off + len })
            .collect();
        sb.update(&wire, una, smax);
        prop_assert!(sb.sacked_bytes() <= 20_000 + 2_000);
        if let Some(h) = sb.highest_sacked() {
            prop_assert!(h.le(smax) || h.distance_from(smax) < 2_000);
        }
        // Walking holes never yields a sacked byte.
        sb.start_recovery(una);
        let mut sb2 = sb.clone();
        while let Some((start, len)) = sb2.next_hole(una, 500) {
            prop_assert!(len > 0);
            prop_assert!(!sb.is_sacked(start, 1), "hole start inside a sacked range");
        }
    }

    // -----------------------------------------------------------------
    // Codec roundtrip laws.
    // -----------------------------------------------------------------

    #[test]
    fn tcp_segment_roundtrips(
        sport in 1u16..u16::MAX, dport in 1u16..u16::MAX,
        seq in any::<u32>(), ack in any::<u32>(),
        flag_bits in 0u8..=255, window in any::<u16>(),
        ts in proptest::option::of((any::<u32>(), any::<u32>())),
        payload in proptest::collection::vec(any::<u8>(), 0..600),
        nblocks in 0usize..3,
    ) {
        let src = NodeId(1).mesh_addr();
        let dst = NodeId(2).mesh_addr();
        let mut seg = Segment::new(sport, dport, TcpSeq(seq), TcpSeq(ack), Flags(flag_bits));
        seg.window = window;
        seg.timestamps = ts.map(|(v, e)| Timestamps { value: v, echo: e });
        for k in 0..nblocks {
            seg.sack_blocks.push(SackBlock {
                start: TcpSeq(seq.wrapping_add(1000 * k as u32)),
                end: TcpSeq(seq.wrapping_add(1000 * k as u32 + 400)),
            });
        }
        seg.payload = payload;
        let enc = seg.encode(src, dst);
        let dec = Segment::decode(src, dst, &enc);
        prop_assert_eq!(dec, Some(seg));
    }

    #[test]
    fn tcp_decoder_rejects_any_corruption(
        payload in proptest::collection::vec(any::<u8>(), 0..200),
        flip_byte in 0usize..100,
        flip_bit in 0u8..8,
    ) {
        let src = NodeId(1).mesh_addr();
        let dst = NodeId(2).mesh_addr();
        let mut seg = Segment::new(5, 6, TcpSeq(1), TcpSeq(2), Flags::ACK);
        seg.payload = payload;
        let mut enc = seg.encode(src, dst);
        let idx = flip_byte % enc.len();
        enc[idx] ^= 1 << flip_bit;
        // Either rejected, or (if the flip hit a field covered by the
        // checksum twice...) never silently yields different payload
        // with a valid checksum. One bit flip always breaks the
        // Internet checksum, so decode must fail.
        prop_assert!(Segment::decode(src, dst, &enc).is_none());
    }

    #[test]
    fn ipv6_header_roundtrips(
        dscp in 0u8..64, ecn_bits in 0u8..4, fl in 0u32..(1 << 20),
        plen in any::<u16>(), nh in any::<u8>(), hl in any::<u8>(),
        src in any::<[u8; 16]>(), dst in any::<[u8; 16]>(),
    ) {
        let hdr = Ipv6Header {
            dscp,
            ecn: tcplp_repro::netip::Ecn::from_bits(ecn_bits),
            flow_label: fl,
            payload_len: plen,
            next_header: NextHeader::from_value(nh),
            hop_limit: hl,
            src: Ipv6Addr(src),
            dst: Ipv6Addr(dst),
        };
        prop_assert_eq!(Ipv6Header::decode(&hdr.encode()), Some(hdr));
    }

    #[test]
    fn udp_datagram_roundtrips(
        sport in any::<u16>(), dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let src = NodeId(3).mesh_addr();
        let dst = NodeId(4).mesh_addr();
        let dg = UdpHeader::encode_datagram(src, dst, sport, dport, &payload);
        let (hdr, body) = UdpHeader::decode_datagram(src, dst, &dg).expect("valid");
        prop_assert_eq!(hdr.src_port, sport);
        prop_assert_eq!(hdr.dst_port, dport);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn iphc_roundtrips_tcp_packets(
        src_id in 1u16..999, dst_id in 1u16..999,
        hop_limit in 1u8..255,
        ecn_bits in 0u8..4,
        payload in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let mut hdr = Ipv6Header::new(
            NodeId(src_id).mesh_addr(),
            NodeId(dst_id).mesh_addr(),
            NextHeader::Tcp,
            payload.len() as u16,
        );
        hdr.hop_limit = hop_limit;
        hdr.ecn = tcplp_repro::netip::Ecn::from_bits(ecn_bits);
        let pkt = lowpan::compress(&hdr, NodeId(src_id), NodeId(dst_id), &payload);
        let (back, body) = lowpan::decompress(&pkt, NodeId(src_id), NodeId(dst_id)).expect("ok");
        prop_assert_eq!(back.src, hdr.src);
        prop_assert_eq!(back.dst, hdr.dst);
        prop_assert_eq!(back.hop_limit, hop_limit);
        prop_assert_eq!(back.ecn, hdr.ecn);
        prop_assert_eq!(body, payload);
    }

    #[test]
    fn fragmentation_roundtrips_any_order(
        size in 105usize..1200,
        tag in any::<u16>(),
        shuffle_seed in any::<u64>(),
    ) {
        let packet: Vec<u8> = (0..size).map(|i| (i * 37 % 256) as u8).collect();
        let mut frags = lowpan::fragment(&packet, tag, 104);
        // Deterministic shuffle.
        let mut rng = tcplp_repro::sim::Rng::new(shuffle_seed);
        for i in (1..frags.len()).rev() {
            let j = rng.gen_range(i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        let mut r = lowpan::Reassembler::default();
        let mut done = None;
        for f in &frags {
            done = r.offer(NodeId(1), &f.bytes, Instant::ZERO).or(done);
        }
        prop_assert_eq!(done, Some(packet));
    }

    #[test]
    fn coap_message_roundtrips(
        con in any::<bool>(),
        mid in any::<u16>(),
        token in proptest::collection::vec(any::<u8>(), 0..8),
        payload in proptest::collection::vec(any::<u8>(), 1..300),
        block_num in 0u32..5000,
    ) {
        use tcplp_repro::coap::{CoapCode, CoapMessage, CoapOption, MsgType};
        let mut m = CoapMessage::new(
            if con { MsgType::Con } else { MsgType::Non },
            CoapCode::POST,
            mid,
        );
        m.token = token;
        m.add_option(CoapOption::UriPath, b"sensors".to_vec());
        m.add_option(
            CoapOption::Block1,
            tcplp_repro::coap::msg::BlockValue { num: block_num, more: true, szx: 5 }.encode(),
        );
        m.payload = payload;
        prop_assert_eq!(CoapMessage::decode(&m.encode()), Some(m));
    }
}
