//! Randomized property tests over the core data structures and codecs:
//! stream invariants of the in-place reassembly receive buffer and
//! circular send buffer, wraparound-safe sequence arithmetic, SACK
//! scoreboard consistency, and roundtrip laws for every wire codec.
//!
//! Cases are generated from `lln_sim::Rng` with fixed seeds so the
//! suite is deterministic and needs no external crates (the build must
//! work offline). Each property runs a few hundred generated cases.

use tcplp_repro::netip::{Ipv6Addr, Ipv6Header, NextHeader, NodeId, UdpHeader};
use tcplp_repro::sim::{Instant, Rng};
use tcplp_repro::sixlowpan as lowpan;
use tcplp_repro::tcplp::{
    Flags, RecvBuffer, SackBlock, SackScoreboard, Segment, SendBuffer, TcpSeq, Timestamps,
};

fn rand_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn usize_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    lo + rng.gen_range((hi - lo) as u64) as usize
}

// ---------------------------------------------------------------------
// Receive buffer: arbitrary segment arrival order must deliver the
// stream intact, never deliver out-of-range data, and keep internal
// invariants.
// ---------------------------------------------------------------------

#[test]
fn recvbuf_reassembles_any_arrival_order() {
    let mut rng = Rng::new(1);
    for _ in 0..200 {
        let cap = usize_in(&mut rng, 64, 512);
        let seg_len = usize_in(&mut rng, 1, 96);
        let norder = usize_in(&mut rng, 1, 32);
        let stream: Vec<u8> = (0..cap).map(|i| (i * 131 % 251) as u8).collect();
        let mut rb = RecvBuffer::new(cap);
        let mut delivered = Vec::new();
        let nsegs = cap.div_ceil(seg_len);
        for _ in 0..norder {
            let k = rng.gen_range(nsegs as u64) as usize;
            let start = k * seg_len;
            let end = (start + seg_len).min(cap);
            let consumed = delivered.len() + rb.available();
            if start < consumed {
                continue; // already in sequence; socket would trim
            }
            let offset = start - consumed;
            rb.write(offset, &stream[start..end]);
            rb.check_invariants();
            let mut buf = vec![0u8; rb.available()];
            let n = rb.read(&mut buf);
            delivered.extend_from_slice(&buf[..n]);
        }
        assert!(delivered.len() <= cap);
        assert_eq!(&delivered[..], &stream[..delivered.len()]);
    }
}

#[test]
fn recvbuf_window_conservation() {
    let mut rng = Rng::new(2);
    for _ in 0..200 {
        let cap = usize_in(&mut rng, 16, 256);
        let mut rb = RecvBuffer::new(cap);
        for _ in 0..usize_in(&mut rng, 0, 16) {
            let off = usize_in(&mut rng, 0, 64);
            let len = usize_in(&mut rng, 1, 64);
            let data = vec![0xa5u8; len];
            rb.write(off, &data);
            rb.check_invariants();
            // Window + available never exceeds capacity.
            assert_eq!(rb.available() + rb.window(), cap);
        }
    }
}

// ---------------------------------------------------------------------
// Send buffer: push/advance/view behave like a byte queue.
// ---------------------------------------------------------------------

#[test]
fn sendbuf_behaves_like_byte_queue() {
    let mut rng = Rng::new(3);
    for _ in 0..200 {
        let cap = usize_in(&mut rng, 8, 256);
        let mut sb = SendBuffer::new(cap);
        let mut model: Vec<u8> = Vec::new();
        let mut counter = 0u8;
        for _ in 0..usize_in(&mut rng, 1, 64) {
            let is_push = rng.gen_bool(0.5);
            let n = usize_in(&mut rng, 1, 64);
            if is_push {
                let chunk: Vec<u8> = (0..n)
                    .map(|_| {
                        counter = counter.wrapping_add(1);
                        counter
                    })
                    .collect();
                let accepted = sb.push(&chunk);
                assert_eq!(accepted, n.min(cap - model.len()));
                model.extend_from_slice(&chunk[..accepted]);
            } else {
                let k = n.min(model.len());
                sb.advance(k);
                model.drain(..k);
            }
            assert_eq!(sb.len(), model.len());
            assert_eq!(sb.copy_out(0, model.len()), model.clone());
            // Zero-copy view agrees with copy_out at arbitrary offsets.
            if !model.is_empty() {
                let off = model.len() / 2;
                let (a, b) = sb.view(off, model.len());
                let mut v = a.to_vec();
                v.extend_from_slice(b);
                assert_eq!(&v[..], &model[off..]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sequence arithmetic is a total order on windows < 2^31.
// ---------------------------------------------------------------------

#[test]
fn seq_ordering_antisymmetric() {
    let mut rng = Rng::new(4);
    for _ in 0..1000 {
        let a = rng.next_u64() as u32;
        let delta = 1 + rng.gen_range(0x7fff_fffe) as u32;
        let x = TcpSeq(a);
        let y = x + delta;
        assert!(x.lt(y));
        assert!(!y.lt(x));
        assert!(y.gt(x));
        assert_eq!(y.distance_from(x), delta);
    }
}

#[test]
fn seq_window_membership_consistent() {
    let mut rng = Rng::new(5);
    for _ in 0..1000 {
        let base = rng.next_u64() as u32;
        let len = 1 + rng.gen_range(999_999) as u32;
        let k = rng.gen_range(1_000_000) as u32;
        let lo = TcpSeq(base);
        let s = lo + k;
        assert_eq!(s.in_window(lo, len), k < len);
    }
}

// ---------------------------------------------------------------------
// SACK scoreboard: sacked bytes never exceed the window, holes and
// sacked ranges are disjoint.
// ---------------------------------------------------------------------

#[test]
fn sack_scoreboard_consistency() {
    let mut rng = Rng::new(6);
    for _ in 0..300 {
        let base = rng.next_u64() as u32;
        let una = TcpSeq(base);
        let smax = una + 20_000;
        let mut sb = SackScoreboard::new();
        let nblocks = usize_in(&mut rng, 0, 12);
        let wire: Vec<SackBlock> = (0..nblocks)
            .map(|_| {
                let off = rng.gen_range(20_000) as u32;
                let len = 1 + rng.gen_range(1_999) as u32;
                SackBlock {
                    start: una + off,
                    end: una + off + len,
                }
            })
            .collect();
        sb.update(&wire, una, smax);
        assert!(sb.sacked_bytes() <= 20_000 + 2_000);
        if let Some(h) = sb.highest_sacked() {
            assert!(h.le(smax) || h.distance_from(smax) < 2_000);
        }
        // Walking holes never yields a sacked byte.
        sb.start_recovery(una);
        let mut sb2 = sb.clone();
        while let Some((start, len)) = sb2.next_hole(una, 500) {
            assert!(len > 0);
            assert!(!sb.is_sacked(start, 1), "hole start inside a sacked range");
        }
    }
}

// ---------------------------------------------------------------------
// Codec roundtrip laws.
// ---------------------------------------------------------------------

#[test]
fn tcp_segment_roundtrips() {
    let mut rng = Rng::new(7);
    let src = NodeId(1).mesh_addr();
    let dst = NodeId(2).mesh_addr();
    for _ in 0..300 {
        let sport = 1 + rng.gen_range(u64::from(u16::MAX - 1)) as u16;
        let dport = 1 + rng.gen_range(u64::from(u16::MAX - 1)) as u16;
        let seq = rng.next_u64() as u32;
        let ack = rng.next_u64() as u32;
        let mut seg = Segment::new(
            sport,
            dport,
            TcpSeq(seq),
            TcpSeq(ack),
            Flags(rng.next_u64() as u8),
        );
        seg.window = rng.next_u64() as u16;
        if rng.gen_bool(0.5) {
            seg.timestamps = Some(Timestamps {
                value: rng.next_u64() as u32,
                echo: rng.next_u64() as u32,
            });
        }
        for k in 0..rng.gen_range(3) {
            seg.sack_blocks.push(SackBlock {
                start: TcpSeq(seq.wrapping_add(1000 * k as u32)),
                end: TcpSeq(seq.wrapping_add(1000 * k as u32 + 400)),
            });
        }
        let plen = usize_in(&mut rng, 0, 600);
        seg.payload = rand_bytes(&mut rng, plen);
        let enc = seg.encode(src, dst);
        let dec = Segment::decode(src, dst, &enc);
        assert_eq!(dec, Some(seg));
    }
}

#[test]
fn tcp_decoder_rejects_any_corruption() {
    let mut rng = Rng::new(8);
    let src = NodeId(1).mesh_addr();
    let dst = NodeId(2).mesh_addr();
    for _ in 0..500 {
        let mut seg = Segment::new(5, 6, TcpSeq(1), TcpSeq(2), Flags::ACK);
        let plen = usize_in(&mut rng, 0, 200);
        seg.payload = rand_bytes(&mut rng, plen);
        let mut enc = seg.encode(src, dst);
        let idx = rng.gen_range(enc.len() as u64) as usize;
        let bit = rng.gen_range(8) as u8;
        enc[idx] ^= 1 << bit;
        // One bit flip always breaks the Internet checksum, so decode
        // must fail — never silently yield a different segment.
        assert!(Segment::decode(src, dst, &enc).is_none());
    }
}

#[test]
fn ipv6_header_roundtrips() {
    let mut rng = Rng::new(9);
    for _ in 0..500 {
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        for b in src.iter_mut().chain(dst.iter_mut()) {
            *b = rng.next_u64() as u8;
        }
        let hdr = Ipv6Header {
            dscp: rng.gen_range(64) as u8,
            ecn: tcplp_repro::netip::Ecn::from_bits(rng.gen_range(4) as u8),
            flow_label: rng.gen_range(1 << 20) as u32,
            payload_len: rng.next_u64() as u16,
            next_header: NextHeader::from_value(rng.next_u64() as u8),
            hop_limit: rng.next_u64() as u8,
            src: Ipv6Addr(src),
            dst: Ipv6Addr(dst),
        };
        assert_eq!(Ipv6Header::decode(&hdr.encode()), Some(hdr));
    }
}

#[test]
fn udp_datagram_roundtrips() {
    let mut rng = Rng::new(10);
    let src = NodeId(3).mesh_addr();
    let dst = NodeId(4).mesh_addr();
    for _ in 0..300 {
        let sport = rng.next_u64() as u16;
        let dport = rng.next_u64() as u16;
        let plen = usize_in(&mut rng, 0, 300);
        let payload = rand_bytes(&mut rng, plen);
        let dg = UdpHeader::encode_datagram(src, dst, sport, dport, &payload);
        let (hdr, body) = UdpHeader::decode_datagram(src, dst, &dg).expect("valid");
        assert_eq!(hdr.src_port, sport);
        assert_eq!(hdr.dst_port, dport);
        assert_eq!(body, &payload[..]);
    }
}

#[test]
fn iphc_roundtrips_tcp_packets() {
    let mut rng = Rng::new(11);
    for _ in 0..300 {
        let src_id = 1 + rng.gen_range(998) as u16;
        let dst_id = 1 + rng.gen_range(998) as u16;
        let hop_limit = 1 + rng.gen_range(254) as u8;
        let plen = usize_in(&mut rng, 1, 600);
        let payload = rand_bytes(&mut rng, plen);
        let mut hdr = Ipv6Header::new(
            NodeId(src_id).mesh_addr(),
            NodeId(dst_id).mesh_addr(),
            NextHeader::Tcp,
            payload.len() as u16,
        );
        hdr.hop_limit = hop_limit;
        hdr.ecn = tcplp_repro::netip::Ecn::from_bits(rng.gen_range(4) as u8);
        let pkt = lowpan::compress(&hdr, NodeId(src_id), NodeId(dst_id), &payload);
        let (back, body) =
            lowpan::decompress(&pkt, NodeId(src_id), NodeId(dst_id)).expect("ok");
        assert_eq!(back.src, hdr.src);
        assert_eq!(back.dst, hdr.dst);
        assert_eq!(back.hop_limit, hop_limit);
        assert_eq!(back.ecn, hdr.ecn);
        assert_eq!(body, payload);
    }
}

#[test]
fn fragmentation_roundtrips_any_order() {
    let mut rng = Rng::new(12);
    for _ in 0..200 {
        let size = usize_in(&mut rng, 105, 1200);
        let tag = rng.next_u64() as u16;
        let packet: Vec<u8> = (0..size).map(|i| (i * 37 % 256) as u8).collect();
        let mut frags = lowpan::fragment(&packet, tag, 104);
        // Deterministic shuffle.
        for i in (1..frags.len()).rev() {
            let j = rng.gen_range(i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        let mut r = lowpan::Reassembler::default();
        let mut done = None;
        for f in &frags {
            done = r.offer(NodeId(1), &f.bytes, Instant::ZERO).or(done);
        }
        assert_eq!(done, Some(packet));
    }
}

#[test]
fn coap_message_roundtrips() {
    use tcplp_repro::coap::{CoapCode, CoapMessage, CoapOption, MsgType};
    let mut rng = Rng::new(13);
    for _ in 0..300 {
        let mut m = CoapMessage::new(
            if rng.gen_bool(0.5) {
                MsgType::Con
            } else {
                MsgType::Non
            },
            CoapCode::POST,
            rng.next_u64() as u16,
        );
        let tlen = usize_in(&mut rng, 0, 8);
        m.token = rand_bytes(&mut rng, tlen);
        m.add_option(CoapOption::UriPath, b"sensors".to_vec());
        m.add_option(
            CoapOption::Block1,
            tcplp_repro::coap::msg::BlockValue {
                num: rng.gen_range(5000) as u32,
                more: true,
                szx: 5,
            }
            .encode(),
        );
        let plen = usize_in(&mut rng, 1, 300);
        m.payload = rand_bytes(&mut rng, plen);
        assert_eq!(CoapMessage::decode(&m.encode()), Some(m));
    }
}
