//! Fuzz-style decoder robustness: every wire-decode path in the stack
//! must reject arbitrary garbage with `None`, never a panic.
//!
//! The chaos tier's `BitErrorBurst` hands *corrupted frames* to the
//! real decoders (the FCS/checksum rejection path), so the invariant
//! here is load-bearing: a decoder panic on a flipped bit would crash
//! the whole simulated mote. Three attack shapes: pure random bytes,
//! bit-flipped valid encodings, and truncation sweeps of valid
//! encodings.

use tcplp_repro::coap::{CoapCode, CoapMessage, CoapOption, MsgType};
use tcplp_repro::mac::frame::{FrameType, MacFrame};
use tcplp_repro::netip::{Ipv6Addr, Ipv6Header, NextHeader, NodeId, UdpHeader};
use tcplp_repro::sim::{Instant, Rng};
use tcplp_repro::sixlowpan::{compress, decompress, fragment, Reassembler};
use tcplp_repro::tcplp::{Flags, Segment, TcpSeq, Timestamps};

fn addr(i: u16) -> Ipv6Addr {
    NodeId(i).mesh_addr()
}

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Feeds one byte string through every decoder in the stack. Returns
/// how many decoders accepted it (only to keep the calls observable).
fn poke_all_decoders(bytes: &[u8], reasm: &mut Reassembler, now: Instant) -> usize {
    let a = addr(1);
    let b = addr(2);
    let mut accepted = 0;
    accepted += usize::from(MacFrame::decode(bytes).is_some());
    accepted += usize::from(decompress(bytes, NodeId(1), NodeId(2)).is_some());
    accepted += usize::from(Segment::decode(a, b, bytes).is_some());
    accepted += usize::from(Ipv6Header::decode(bytes).is_some());
    accepted += usize::from(UdpHeader::decode_datagram(a, b, bytes).is_some());
    accepted += usize::from(CoapMessage::decode(bytes).is_some());
    accepted += usize::from(reasm.offer(NodeId(1), bytes, now).is_some());
    accepted
}

#[test]
fn random_bytes_never_panic_any_decoder() {
    let mut rng = Rng::new(0xF022);
    let mut reasm = Reassembler::default();
    for round in 0..4000 {
        let len = (rng.next_u64() % 160) as usize;
        let bytes = random_bytes(&mut rng, len);
        poke_all_decoders(&bytes, &mut reasm, Instant::from_millis(round));
    }
}

/// Valid encodings of every layer, used as mutation seeds.
fn valid_encodings() -> Vec<Vec<u8>> {
    let a = addr(1);
    let b = addr(2);
    let mut out = Vec::new();

    // MAC data frame, command frame, and ACK.
    let data = MacFrame {
        frame_type: FrameType::Data,
        seq: 7,
        dst: NodeId(2),
        src: NodeId(1),
        pending: false,
        ack_request: true,
        payload: (0u8..80).collect(),
    };
    out.push(data.encode());
    let ack = MacFrame {
        frame_type: FrameType::Ack,
        payload: Vec::new(),
        ..data.clone()
    };
    out.push(ack.encode());

    // TCP segment with options, inside an IPv6 header's payload.
    let mut seg = Segment::new(
        49152,
        80,
        TcpSeq(0x1000),
        TcpSeq(0x2000),
        Flags::ACK | Flags::PSH,
    );
    seg.window = 1848;
    seg.timestamps = Some(Timestamps {
        value: 1234,
        echo: 987,
    });
    seg.payload = (0u8..64).collect();
    out.push(seg.encode(a, b));
    let mut syn = Segment::new(49152, 80, TcpSeq(1), TcpSeq(0), Flags::SYN);
    syn.mss = Some(462);
    syn.sack_permitted = true;
    out.push(syn.encode(a, b));

    // Bare IPv6 header and a UDP datagram.
    let hdr = Ipv6Header::new(a, b, NextHeader::Udp, 30);
    out.push(hdr.encode().to_vec());
    out.push(UdpHeader::encode_datagram(a, b, 49001, 5683, &[9u8; 22]));

    // IPHC-compressed TCP/IPv6 packet.
    let tcp_hdr = Ipv6Header::new(a, b, NextHeader::Tcp, 84);
    out.push(compress(&tcp_hdr, NodeId(1), NodeId(2), &seg.encode(a, b)));

    // CoAP POST with Uri-Path and a payload.
    let mut msg = CoapMessage::new(MsgType::Con, CoapCode::POST, 0xBEEF);
    msg.token = vec![1, 2, 3, 4];
    msg.add_option(CoapOption::UriPath, b"sensors".to_vec());
    msg.payload = (0u8..40).collect();
    out.push(msg.encode());

    out
}

#[test]
fn bit_flipped_valid_encodings_never_panic() {
    let seeds = valid_encodings();
    let mut rng = Rng::new(0xB17F);
    let mut reasm = Reassembler::default();
    let mut round = 0u64;
    for seed in &seeds {
        for _ in 0..600 {
            let mut bytes = seed.clone();
            // 1-4 independent bit flips.
            let flips = 1 + (rng.next_u64() % 4) as usize;
            for _ in 0..flips {
                let bit = (rng.next_u64() % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            poke_all_decoders(&bytes, &mut reasm, Instant::from_millis(round));
            round += 1;
        }
    }
}

#[test]
fn truncated_valid_encodings_never_panic() {
    let seeds = valid_encodings();
    let mut reasm = Reassembler::default();
    let mut round = 0u64;
    for seed in &seeds {
        for cut in 0..seed.len() {
            poke_all_decoders(&seed[..cut], &mut reasm, Instant::from_millis(round));
            round += 1;
        }
    }
}

#[test]
fn corrupted_fragment_streams_never_panic() {
    // 6LoWPAN fragments of a real packet, with flips in the fragment
    // headers (tag, size, offset) and bodies, offered in odd orders.
    let a = addr(1);
    let b = addr(2);
    let hdr = Ipv6Header::new(a, b, NextHeader::Tcp, 400);
    let mut seg = Segment::new(49152, 80, TcpSeq(5), TcpSeq(9), Flags::ACK);
    seg.payload = vec![0x7E; 400];
    let packet = compress(&hdr, NodeId(1), NodeId(2), &seg.encode(a, b));
    let mut rng = Rng::new(0xF4A6);
    for round in 0..400u64 {
        let mut reasm = Reassembler::default();
        let frags = fragment(&packet, round as u16, 96);
        for (k, f) in frags.iter().enumerate() {
            let mut bytes = f.bytes.clone();
            let bit = (rng.next_u64() % (bytes.len() as u64 * 8)) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
            // Interleave corrupted and clean copies from two "sources".
            let src = NodeId(1 + (k as u16 & 1));
            if let Some(pkt) = reasm.offer(src, &bytes, Instant::from_millis(round)) {
                // A reassembled packet (corruption in the body, not the
                // header) must still decompress without panicking.
                let _ = decompress(&pkt, NodeId(1), NodeId(2));
            }
        }
    }
}

/// Sanity: the seeds really are valid (each layer's decoder accepts
/// its own encoding) — otherwise the mutation tests fuzz nothing.
#[test]
fn seeds_round_trip() {
    let a = addr(1);
    let b = addr(2);
    let seeds = valid_encodings();
    assert!(MacFrame::decode(&seeds[0]).is_some(), "MAC data frame");
    assert!(MacFrame::decode(&seeds[1]).is_some(), "MAC ack");
    assert!(Segment::decode(a, b, &seeds[2]).is_some(), "TCP segment");
    assert!(Segment::decode(a, b, &seeds[3]).is_some(), "TCP SYN");
    assert!(Ipv6Header::decode(&seeds[4]).is_some(), "IPv6 header");
    assert!(
        UdpHeader::decode_datagram(a, b, &seeds[5]).is_some(),
        "UDP datagram"
    );
    assert!(
        decompress(&seeds[6], NodeId(1), NodeId(2)).is_some(),
        "IPHC packet"
    );
    assert!(CoapMessage::decode(&seeds[7]).is_some(), "CoAP message");
}
