//! Workspace-level integration tests: scenarios spanning every crate,
//! checking that the reproduction's headline behaviours hold end to
//! end.

use tcplp_repro::coap::{CoapClient, CoapClientConfig, Cocoa, RtoAlgorithm};
use tcplp_repro::mac::MacConfig;
use tcplp_repro::models;
use tcplp_repro::node::app::App;
use tcplp_repro::node::route::Topology;
use tcplp_repro::node::stack::NodeKind;
use tcplp_repro::node::world::{World, WorldConfig};
use tcplp_repro::phy::{LinkMatrix, RadioIdx};
use tcplp_repro::sim::{Duration, Instant};
use tcplp_repro::tcplp::TcpConfig;

fn chain_world(hops: usize, prr: f64, d_ms: u64, seed: u64) -> World {
    let topo = Topology::chain(hops + 1, prr);
    let cfg = WorldConfig {
        seed,
        mac: MacConfig {
            retry_delay_max: Duration::from_millis(d_ms),
            ..MacConfig::default()
        },
        ..WorldConfig::default()
    };
    World::new(&topo, &vec![NodeKind::Router; hops + 1], cfg)
}

fn bulk(world: &mut World, src: usize, dst: usize, bytes: u64, secs: u64) -> f64 {
    world.add_tcp_listener(dst, TcpConfig::default());
    world.set_sink(dst);
    world.add_tcp_client(src, dst, TcpConfig::default(), Instant::from_millis(10));
    world.set_bulk_sender(src, Some(bytes));
    world.run_for(Duration::from_secs(secs));
    world.nodes[dst].app.sink_goodput_bps()
}

#[test]
fn headline_single_hop_goodput() {
    // Paper Table 7 / §6.3: TCPlp reaches ~63-75 kb/s over one hop —
    // 5-40x the simplified stacks.
    let mut world = chain_world(1, 0.999, 40, 1);
    let goodput = bulk(&mut world, 1, 0, 300_000, 60);
    assert!(
        (55_000.0..85_000.0).contains(&goodput),
        "single-hop TCPlp goodput {goodput:.0} b/s out of range"
    );
}

#[test]
fn goodput_shrinks_with_hops_like_the_bound() {
    // §7.2: B, ~B/2, ~B/3.
    let g1 = bulk(&mut chain_world(1, 0.999, 40, 2), 1, 0, 300_000, 90);
    let g2 = bulk(&mut chain_world(2, 0.999, 40, 2), 2, 0, 200_000, 90);
    let g3 = bulk(&mut chain_world(3, 0.999, 40, 2), 3, 0, 150_000, 90);
    assert!(g2 < 0.65 * g1, "2 hops {g2:.0} not < 0.65x single-hop {g1:.0}");
    assert!(g3 < 0.55 * g1, "3 hops {g3:.0} not < 0.55x single-hop {g1:.0}");
    assert!(
        g3 > 0.15 * g1,
        "3 hops {g3:.0} collapsed relative to {g1:.0}"
    );
    // And the analytic bound brackets the measurements from above.
    assert!(g2 <= g1 * models::multihop_scale_factor(2) * 1.3);
    assert!(g3 <= g1 * models::multihop_scale_factor(3) * 1.3);
}

#[test]
fn retry_delay_rescues_hidden_terminal_losses() {
    // Figure 6(b): segment loss at d=0 far exceeds loss at d=40ms.
    let loss = |d_ms: u64| {
        let mut world = chain_world(3, 0.999, d_ms, 3);
        world.add_tcp_listener(0, TcpConfig::default());
        world.set_sink(0);
        world.add_tcp_client(3, 0, TcpConfig::default(), Instant::from_millis(10));
        world.set_bulk_sender(3, Some(400_000));
        world.run_for(Duration::from_secs(90));
        let s = &world.nodes[3].transport.tcp[0];
        s.stats.segs_retransmitted as f64 / (s.stats.segs_sent - s.stats.acks_sent).max(1) as f64
    };
    let at0 = loss(0);
    let at40 = loss(40);
    assert!(
        at0 > 3.0 * at40,
        "segment loss at d=0 ({at0:.3}) should dwarf d=40ms ({at40:.3})"
    );
}

#[test]
fn eq2_model_tracks_measured_goodput() {
    // §8: Equation 2 predicts within ~35% given measured RTT and loss.
    let mut world = chain_world(3, 0.999, 40, 4);
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink(0);
    let si = world.add_tcp_client(3, 0, TcpConfig::default(), Instant::from_millis(10));
    world.nodes[3].transport.tcp[si].rtt_trace.enable();
    world.set_bulk_sender(3, Some(400_000));
    world.run_for(Duration::from_secs(120));
    let s = &world.nodes[3].transport.tcp[si];
    let rtts = s.rtt_trace.samples();
    let mean_rtt_us: u64 =
        rtts.iter().map(|&(_, r)| r.as_micros()).sum::<u64>() / rtts.len().max(1) as u64;
    let p = (s.stats.segs_retransmitted as f64
        / (s.stats.segs_sent - s.stats.acks_sent).max(1) as f64)
        .clamp(1e-4, 0.4);
    let measured = world.nodes[0].app.sink_goodput_bps();
    let predicted =
        models::tcplp_goodput_bps(462.0, Duration::from_micros(mean_rtt_us), 4.0, p);
    let ratio = predicted / measured;
    assert!(
        (0.6..1.6).contains(&ratio),
        "Eq.2 predicted {predicted:.0} vs measured {measured:.0} (ratio {ratio:.2})"
    );
    // Equation 1 wildly overpredicts in the same regime (the paper's
    // point about loss-limited models).
    let eq1 = models::mathis_goodput_bps(462.0, Duration::from_micros(mean_rtt_us), p);
    assert!(eq1 > 2.0 * measured, "Eq.1 {eq1:.0} should overpredict");
}

#[test]
fn cwnd_stays_pinned_despite_loss() {
    // §7.3: with 4-segment buffers, the time-weighted mean cwnd stays
    // near the maximum even under hidden-terminal loss at d=0.
    let mut world = chain_world(3, 0.999, 0, 5);
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink(0);
    let si = world.add_tcp_client(3, 0, TcpConfig::default(), Instant::from_millis(10));
    world.nodes[3].transport.tcp[si].cwnd_trace.enable();
    world.set_bulk_sender(3, None);
    world.run_for(Duration::from_secs(120));
    let s = &world.nodes[3].transport.tcp[si];
    let mean = s
        .cwnd_trace
        .mean_cwnd(Instant::from_secs(20), Instant::from_secs(120));
    assert!(
        mean > 0.55 * 1848.0,
        "mean cwnd {mean:.0} too low for the buffer-limited regime"
    );
}

#[test]
fn tcp_and_coap_both_reliable_under_moderate_loss() {
    // Figure 9(a) at 9% injected loss: both reliability protocols stay
    // near 100%.
    let mut links = LinkMatrix::new(4);
    links.set_symmetric(RadioIdx(1), RadioIdx(2), 0.98);
    links.set_symmetric(RadioIdx(2), RadioIdx(3), 0.98);
    let topo = Topology::with_shortest_paths(links);

    // TCP arm.
    let mut world = World::new(
        &topo,
        &[
            NodeKind::CloudHost,
            NodeKind::BorderRouter,
            NodeKind::Router,
            NodeKind::SleepyLeaf,
        ],
        WorldConfig::default(),
    );
    world.set_injected_loss(1, 0.09);
    world.add_tcp_listener(0, TcpConfig::default());
    world.set_sink(0);
    world.add_tcp_client(3, 0, TcpConfig::default(), Instant::from_millis(300));
    world.set_anemometer(3, 64, Some(16), Instant::from_secs(1));
    world.run_for(Duration::from_secs(600));
    let delivered = world.nodes[0].app.sink_received() / 82;
    let App::Anemometer(a) = &world.nodes[3].app else {
        panic!()
    };
    let denom = a.generated - a.queue.len() as u64
        - (world.nodes[3].transport.tcp[0].send_queued() / 82) as u64;
    assert!(
        delivered as f64 >= 0.9 * denom as f64,
        "TCP reliability under 9% loss: {delivered}/{denom}"
    );

    // CoAP arm.
    let mut world = World::new(
        &topo,
        &[
            NodeKind::CloudHost,
            NodeKind::BorderRouter,
            NodeKind::Router,
            NodeKind::SleepyLeaf,
        ],
        WorldConfig::default(),
    );
    world.set_injected_loss(1, 0.09);
    world.add_coap_server(0);
    world.add_coap_client(
        3,
        CoapClient::new(CoapClientConfig::default(), RtoAlgorithm::Default, &["s"]),
    );
    world.set_anemometer(3, 104, Some(16), Instant::from_secs(1));
    world.run_for(Duration::from_secs(600));
    let coap_readings: usize = world.nodes[0]
        .transport
        .coap_server
        .as_ref()
        .unwrap()
        .received()
        .iter()
        .map(|r| r.payload.len() / 82)
        .sum();
    let App::Anemometer(a) = &world.nodes[3].app else {
        panic!()
    };
    let backlog = world.nodes[3]
        .transport
        .coap_client
        .as_ref()
        .unwrap()
        .backlog() as u64
        * 5;
    let denom = a.generated.saturating_sub(a.queue.len() as u64 + backlog);
    assert!(
        coap_readings as f64 >= 0.85 * denom as f64,
        "CoAP reliability under 9% loss: {coap_readings}/{denom}"
    );
}

#[test]
fn cocoa_weak_estimator_inflates_rto_under_loss() {
    // §9.4's mechanism, observed through the public API: a CoCoA client
    // whose exchanges keep needing one retransmission ends up with a
    // multi-second RTO, while clean exchanges shrink it.
    let mut lossy = Cocoa::new();
    let mut clean = Cocoa::new();
    for _ in 0..10 {
        lossy.on_exchange_complete(Duration::from_millis(2400), true);
        clean.on_exchange_complete(Duration::from_millis(400), false);
    }
    assert!(lossy.rto() > Duration::from_secs(2));
    assert!(clean.rto() < Duration::from_secs(1));
}

#[test]
fn sleepy_leaf_duty_cycle_orders_of_magnitude_below_always_on() {
    let topo = Topology::chain(2, 0.999);
    let mut world = World::new(
        &topo,
        &[NodeKind::Router, NodeKind::SleepyLeaf],
        WorldConfig::default(),
    );
    world.run_for(Duration::from_secs(1200));
    let now = world.now();
    let leaf_dc = world.nodes[1].meter.radio_duty_cycle(now);
    let router_dc = world.nodes[0].meter.radio_duty_cycle(now);
    assert!(leaf_dc < 0.01, "idle sleepy leaf at {leaf_dc:.4}");
    assert!(router_dc > 0.99, "always-on router at {router_dc:.4}");
}

#[test]
fn six_lowpan_stack_roundtrip_through_real_frames() {
    // A TCP segment encoded, compressed, fragmented into MAC frames,
    // then reassembled and decompressed — byte-identical.
    use tcplp_repro::mac::frame::MacFrame;
    use tcplp_repro::netip::{Ipv6Header, NextHeader, NodeId};
    use tcplp_repro::sixlowpan as lowpan;
    use tcplp_repro::tcplp::{Flags, Segment, TcpSeq};

    let src = NodeId(7).mesh_addr();
    let dst = NodeId(8).mesh_addr();
    let mut seg = Segment::new(1, 2, TcpSeq(9), TcpSeq(10), Flags::ACK | Flags::PSH);
    seg.payload = (0..447u32).map(|i| (i % 256) as u8).collect();
    let tcp_bytes = seg.encode(src, dst);
    let hdr = Ipv6Header::new(src, dst, NextHeader::Tcp, tcp_bytes.len() as u16);
    let packet = lowpan::compress(&hdr, NodeId(7), NodeId(8), &tcp_bytes);
    let frags = lowpan::fragment(&packet, 42, lowpan::MAX_FRAME_PAYLOAD);
    assert_eq!(frags.len(), 5, "five-frame segment");

    // Ship each fragment through a MAC frame codec pass.
    let mut reasm = lowpan::Reassembler::default();
    let mut done = None;
    for (k, f) in frags.iter().enumerate() {
        let mf = MacFrame::data(NodeId(7), NodeId(8), k as u8, f.bytes.clone());
        let decoded = MacFrame::decode(&mf.encode()).expect("mac codec");
        done = reasm.offer(decoded.src, &decoded.payload, Instant::ZERO);
    }
    let packet_back = done.expect("reassembled");
    let (hdr_back, payload_back) =
        lowpan::decompress(&packet_back, NodeId(7), NodeId(8)).expect("iphc");
    assert_eq!(hdr_back.src, src);
    assert_eq!(hdr_back.dst, dst);
    let seg_back = Segment::decode(src, dst, &payload_back).expect("tcp decode");
    assert_eq!(seg_back, seg);
}
