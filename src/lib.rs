//! Umbrella crate for the TCPlp reproduction workspace.
//!
//! Re-exports the individual crates so examples and integration tests can
//! use a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

pub use lln_coap as coap;
pub use lln_energy as energy;
pub use lln_mac as mac;
pub use lln_models as models;
pub use lln_netip as netip;
pub use lln_node as node;
pub use lln_phy as phy;
pub use lln_sim as sim;
pub use lln_sixlowpan as sixlowpan;
pub use lln_uip as uip;
pub use tcplp;
